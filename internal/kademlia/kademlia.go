// Package kademlia implements a Kademlia overlay [MM02] over the 64-bit
// XOR-metric identifier space, with per-node k-bucket routing tables and
// greedy closest-XOR forwarding. CUP (§2.2 of the paper) requires only a
// structured overlay with deterministic bounded-hop routing; Kademlia — the
// substrate behind the largest deployed P2P networks — is the third such
// substrate in this repository, next to the 2-D CAN and the Chord ring.
//
// Determinism. Node identifiers come from hashing fixed labels
// ("kad-node-<i>") and XOR distances between distinct identifiers and a
// fixed target are pairwise distinct (x ↦ x⊕t is a bijection), so both the
// greedy next hop and the globally closest owner are unique — routing needs
// no tie-break rule at all, and CUP's reverse-path update trees are stable.
//
// Convergence. Bucket b of node n holds up to K alive nodes whose
// identifiers first differ from n's at bit b, keeping the K XOR-closest to
// n when the range holds more. A bucket is therefore empty only when its
// whole range is empty. For a target t with d = id(n)⊕t topping out at bit
// b, every member y of bucket b satisfies id(y)⊕t < 2^b ≤ d, and whenever
// any node is closer to t than n, one of n's buckets contains a closer
// node (see NextHop). Greedy forwarding thus strictly shrinks the XOR
// distance every hop, never sticks in a local minimum, and reaches the
// owner in O(log n) hops.
package kademlia

import (
	"fmt"
	"math/bits"
	"sort"

	"cup/internal/overlay"
	"cup/internal/sim"
)

// idBits is the identifier width; distances fit a uint64.
const idBits = 64

// DefaultBucketSize is the classic Kademlia K: the per-bucket capacity.
// Larger K adds routing-table redundancy (more neighbors, shorter paths);
// the protocol above only needs K ≥ 1 for convergence.
const DefaultBucketSize = 8

// Table is a Kademlia overlay: the full membership with one k-bucket
// routing table per node. Node IDs are dense indexes (overlay.NodeID);
// positions in the XOR space come from hashing their labels. Table
// implements overlay.Overlay.
type Table struct {
	k       int
	ids     []uint64             // XOR-space position per NodeID
	alive   []bool               // false ⇒ departed
	labels  map[uint64]bool      // occupied positions, for collision checks
	buckets [][][]overlay.NodeID // buckets[n][b], sorted by XOR distance to n
	nbrs    [][]overlay.NodeID   // cached bucket union per node, sorted by ID
}

var _ overlay.Overlay = (*Table)(nil)

// Build constructs a Kademlia overlay of n nodes with bucket capacity
// DefaultBucketSize. Labels are deterministic, so every build of the same
// size is identical; a hash collision in the identifier space (probability
// ~n²/2^64) panics rather than silently merging two nodes.
func Build(n int) *Table {
	return BuildK(n, DefaultBucketSize)
}

// BuildK is Build with an explicit bucket capacity k ≥ 1.
func BuildK(n, k int) *Table {
	if n <= 0 {
		panic("kademlia: Build requires n > 0")
	}
	if k <= 0 {
		panic("kademlia: bucket capacity must be positive")
	}
	t := &Table{
		k:       k,
		ids:     make([]uint64, 0, n),
		alive:   make([]bool, 0, n),
		labels:  make(map[uint64]bool, n),
		buckets: make([][][]overlay.NodeID, 0, n),
		nbrs:    make([][]overlay.NodeID, 0, n),
	}
	for i := 0; i < n; i++ {
		t.addNode()
	}
	return t
}

// addNode appends one node, inserts it into every existing routing table,
// and fills its own buckets. Returns the new dense ID.
func (t *Table) addNode() overlay.NodeID {
	id := overlay.NodeID(len(t.ids))
	pos := overlay.HashNodeID(fmt.Sprintf("kad-node-%d", id))
	if t.labels[pos] {
		panic(fmt.Sprintf("kademlia: identifier collision at node %v", id))
	}
	t.labels[pos] = true
	t.ids = append(t.ids, pos)
	t.alive = append(t.alive, true)
	t.buckets = append(t.buckets, make([][]overlay.NodeID, idBits))
	t.nbrs = append(t.nbrs, nil)
	for m := range t.alive[:id] {
		mm := overlay.NodeID(m)
		if !t.alive[mm] {
			continue
		}
		t.insert(id, mm)
		if t.insert(mm, id) {
			t.rebuildNeighborCache(mm)
		}
	}
	t.rebuildNeighborCache(id)
	return id
}

// bucketIndex is the index of the highest bit at which a and b differ
// (0..63). Undefined for a == b; positions are collision-checked at birth.
func bucketIndex(a, b uint64) int { return bits.Len64(a^b) - 1 }

// insert places m into the right bucket of n, keeping the bucket sorted by
// XOR distance to n and capped at k entries (farthest evicted). Reports
// whether n's table changed.
func (t *Table) insert(n, m overlay.NodeID) bool {
	b := bucketIndex(t.ids[n], t.ids[m])
	bk := t.buckets[n][b]
	d := t.ids[n] ^ t.ids[m]
	i := sort.Search(len(bk), func(i int) bool { return t.ids[n]^t.ids[bk[i]] > d })
	if i >= t.k {
		return false // farther than every kept entry of a full bucket
	}
	bk = append(bk, overlay.NoNode)
	copy(bk[i+1:], bk[i:])
	bk[i] = m
	if len(bk) > t.k {
		bk = bk[:t.k]
	}
	t.buckets[n][b] = bk
	return true
}

// refillBucket recomputes bucket b of n from scratch: the k XOR-closest
// alive nodes whose identifiers first differ from n's at bit b. Used after
// a departure evicts a bucket entry, when a previously overflowed node may
// get promoted back in.
func (t *Table) refillBucket(n overlay.NodeID, b int) {
	t.buckets[n][b] = t.buckets[n][b][:0]
	for m := range t.alive {
		mm := overlay.NodeID(m)
		if mm == n || !t.alive[mm] || bucketIndex(t.ids[n], t.ids[mm]) != b {
			continue
		}
		t.insert(n, mm)
	}
}

// rebuildNeighborCache recomputes the sorted union of n's buckets.
func (t *Table) rebuildNeighborCache(n overlay.NodeID) {
	var out []overlay.NodeID
	for _, bk := range t.buckets[n] {
		out = append(out, bk...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	t.nbrs[n] = out
}

// Join adds a fresh node at the next dense ID and wires it into every
// routing table, returning its ID. The node's position is determined by
// its label, so re-running the same join sequence reproduces the overlay.
func (t *Table) Join() overlay.NodeID { return t.addNode() }

// JoinRand implements the uniform dynamic-overlay join hook. Kademlia
// placement is deterministic (label hash), so the randomness source is
// unused.
func (t *Table) JoinRand(*sim.Rand) overlay.NodeID { return t.Join() }

// Leave removes node n. Every bucket that listed n is refilled from the
// surviving membership (promoting nodes the cap had evicted), so routing
// convergence is preserved. It returns the alive node XOR-closest to the
// departed position — the natural heir for its keys, mirroring the CAN's
// takeover rule. Removing the last node panics.
func (t *Table) Leave(n overlay.NodeID) overlay.NodeID {
	if !t.Alive(n) {
		panic(fmt.Sprintf("kademlia: Leave of dead or unknown %v", n))
	}
	if t.Size() == 1 {
		panic("kademlia: cannot remove the last node")
	}
	t.alive[n] = false
	delete(t.labels, t.ids[n])
	t.buckets[n] = make([][]overlay.NodeID, idBits)
	t.nbrs[n] = nil
	for m := range t.alive {
		mm := overlay.NodeID(m)
		if !t.alive[mm] {
			continue
		}
		b := bucketIndex(t.ids[mm], t.ids[n])
		if !contains(t.buckets[mm][b], n) {
			continue
		}
		t.refillBucket(mm, b)
		t.rebuildNeighborCache(mm)
	}
	return t.closestAlive(t.ids[n])
}

func contains(s []overlay.NodeID, n overlay.NodeID) bool {
	for _, m := range s {
		if m == n {
			return true
		}
	}
	return false
}

// closestAlive returns the alive node whose identifier is XOR-closest to
// pos. Unique because positions are distinct.
func (t *Table) closestAlive(pos uint64) overlay.NodeID {
	best := overlay.NoNode
	var bestD uint64
	for i := range t.ids {
		n := overlay.NodeID(i)
		if !t.alive[n] {
			continue
		}
		if d := t.ids[n] ^ pos; best == overlay.NoNode || d < bestD {
			best, bestD = n, d
		}
	}
	return best
}

// Alive reports whether n is currently a member.
func (t *Table) Alive(n overlay.NodeID) bool {
	return int(n) >= 0 && int(n) < len(t.alive) && t.alive[n]
}

// AliveNodes returns the IDs of all alive nodes in ascending order.
func (t *Table) AliveNodes() []overlay.NodeID {
	out := make([]overlay.NodeID, 0, len(t.alive))
	for i, a := range t.alive {
		if a {
			out = append(out, overlay.NodeID(i))
		}
	}
	return out
}

// Size returns the number of alive nodes.
func (t *Table) Size() int {
	n := 0
	for _, a := range t.alive {
		if a {
			n++
		}
	}
	return n
}

// ID returns n's position in the XOR identifier space.
func (t *Table) ID(n overlay.NodeID) uint64 { return t.ids[n] }

// Owner returns the authority node for key k: the alive node XOR-closest
// to the key's identifier.
func (t *Table) Owner(k overlay.Key) overlay.NodeID {
	return t.closestAlive(overlay.HashID(k))
}

// NextHop implements greedy Kademlia routing: forward to the neighbor
// XOR-closest to the key, or stop when no neighbor improves on n itself.
// Stopping is correct, not merely greedy: if any node y were closer to the
// target t than n, then either y first differs from n at the top bit b of
// id(n)⊕t — so bucket b is non-empty and all its members are closer — or y
// agrees with n at b and flips a lower bit c of the distance, in which case
// every member of non-empty bucket c is closer. Hence "no closer neighbor"
// implies n is the global owner.
func (t *Table) NextHop(n overlay.NodeID, k overlay.Key) (overlay.NodeID, bool) {
	if !t.Alive(n) {
		return overlay.NoNode, false
	}
	target := overlay.HashID(k)
	best, bestD := n, t.ids[n]^target
	for _, m := range t.nbrs[n] {
		if d := t.ids[m] ^ target; d < bestD {
			best, bestD = m, d
		}
	}
	return best, true
}

// Neighbors returns n's routing neighbors: the union of its bucket
// entries, sorted by ID. In CUP terms these are the peers with which n
// maintains query/update channels. The slice must not be mutated.
func (t *Table) Neighbors(n overlay.NodeID) []overlay.NodeID {
	return t.nbrs[n]
}

// CheckInvariants verifies structural invariants: buckets list only alive
// nodes in their correct range, sorted by distance and capped at k, each
// bucket holds exactly the k XOR-closest alive nodes of its range, and the
// neighbor cache matches the bucket union. Tests call this after mutation.
func (t *Table) CheckInvariants() error {
	for i := range t.ids {
		n := overlay.NodeID(i)
		if !t.alive[n] {
			if t.nbrs[n] != nil {
				return fmt.Errorf("dead %v has a neighbor cache", n)
			}
			continue
		}
		want := make(map[overlay.NodeID]bool)
		for b, bk := range t.buckets[n] {
			if len(bk) > t.k {
				return fmt.Errorf("%v bucket %d over capacity: %d", n, b, len(bk))
			}
			// Population of range b and how its k closest compare.
			var rangePop int
			var kept []overlay.NodeID
			for j := range t.ids {
				m := overlay.NodeID(j)
				if m == n || !t.alive[m] || bucketIndex(t.ids[n], t.ids[m]) != b {
					continue
				}
				rangePop++
				kept = append(kept, m)
			}
			sort.Slice(kept, func(a, c int) bool {
				return t.ids[n]^t.ids[kept[a]] < t.ids[n]^t.ids[kept[c]]
			})
			if rangePop > t.k {
				kept = kept[:t.k]
			}
			if len(bk) != len(kept) {
				return fmt.Errorf("%v bucket %d has %d entries, want %d", n, b, len(bk), len(kept))
			}
			for j, m := range bk {
				if m != kept[j] {
					return fmt.Errorf("%v bucket %d entry %d is %v, want %v (k-closest)", n, b, j, m, kept[j])
				}
				want[m] = true
			}
		}
		if len(t.nbrs[n]) != len(want) {
			return fmt.Errorf("%v neighbor cache has %d entries, want %d", n, len(t.nbrs[n]), len(want))
		}
		for j, m := range t.nbrs[n] {
			if !want[m] {
				return fmt.Errorf("%v neighbor cache lists %v, not in any bucket", n, m)
			}
			if j > 0 && t.nbrs[n][j-1] >= m {
				return fmt.Errorf("%v neighbor cache not sorted", n)
			}
		}
	}
	return nil
}
