package kademlia

import "cup/internal/overlay"

// Kademlia self-registers with the overlay registry. Positions in the XOR
// space come from hashing deterministic node labels, so the seed is
// ignored: every build of the same size is identical.
func init() {
	overlay.Register("kademlia", func(n int, _ int64) overlay.Overlay {
		return Build(n)
	})
}
