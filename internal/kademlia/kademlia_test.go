package kademlia

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"cup/internal/overlay"
	"cup/internal/sim"
)

func TestBuildSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 256} {
		tb := Build(n)
		if tb.Size() != n {
			t.Fatalf("Size = %d, want %d", tb.Size(), n)
		}
		if err := tb.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBuildZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build(0) did not panic")
		}
	}()
	Build(0)
}

func TestBuildKZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BuildK(4, 0) did not panic")
		}
	}()
	BuildK(4, 0)
}

func TestOwnerIsGlobalClosest(t *testing.T) {
	tb := Build(64)
	for i := 0; i < 100; i++ {
		k := overlay.Key(fmt.Sprintf("key-%d", i))
		h := overlay.HashID(k)
		owner := tb.Owner(k)
		for j := 0; j < 64; j++ {
			m := overlay.NodeID(j)
			if m != owner && tb.ID(m)^h < tb.ID(owner)^h {
				t.Fatalf("key %q: %v is XOR-closer than owner %v", k, m, owner)
			}
		}
	}
}

func TestRoutingReachesOwner(t *testing.T) {
	for _, n := range []int{1, 2, 8, 128, 1024} {
		tb := Build(n)
		for i := 0; i < 100; i++ {
			k := overlay.Key(fmt.Sprintf("route-%d-%d", n, i))
			owner := tb.Owner(k)
			for _, start := range []overlay.NodeID{0, overlay.NodeID(n / 2), overlay.NodeID(n - 1)} {
				path := overlay.PathTo(tb, start, k, 4*idBits)
				if path[len(path)-1] != owner {
					t.Fatalf("n=%d key=%q from %v: ends at %v, owner %v", n, k, start, path[len(path)-1], owner)
				}
			}
		}
	}
}

// TestRoutingDistanceShrinksEveryHop checks the greedy invariant that makes
// reverse-path trees loop-free: each hop strictly reduces XOR distance.
func TestRoutingDistanceShrinksEveryHop(t *testing.T) {
	tb := Build(512)
	for i := 0; i < 80; i++ {
		k := overlay.Key(fmt.Sprintf("shrink-%d", i))
		h := overlay.HashID(k)
		path := overlay.PathTo(tb, overlay.NodeID(i%512), k, 4*idBits)
		for j := 1; j < len(path); j++ {
			if tb.ID(path[j])^h >= tb.ID(path[j-1])^h {
				t.Fatalf("key %q: hop %v→%v does not shrink XOR distance", k, path[j-1], path[j])
			}
		}
	}
}

// TestRoutingIsLogarithmic asserts the ISSUE's acceptance bound: mean path
// length ≤ 2·log₂(n) hops at n ∈ {256, 1024, 4096}.
func TestRoutingIsLogarithmic(t *testing.T) {
	for _, n := range []int{256, 1024, 4096} {
		tb := Build(n)
		total := 0
		const trials = 400
		for i := 0; i < trials; i++ {
			k := overlay.Key(fmt.Sprintf("log-%d-%d", n, i))
			total += overlay.Distance(tb, overlay.NodeID(i%n), k, 4*idBits)
		}
		avg := float64(total) / trials
		if bound := 2 * math.Log2(float64(n)); avg > bound {
			t.Fatalf("n=%d: average path length %.2f exceeds 2·log2(n) = %.1f", n, avg, bound)
		}
	}
}

// TestDeterminism: two builds of the same size agree on every owner and
// every next hop — the property CUP's stable update trees rest on.
func TestDeterminism(t *testing.T) {
	a, b := Build(128), Build(128)
	for i := 0; i < 100; i++ {
		k := overlay.Key(fmt.Sprintf("det-%d", i))
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %q: owners differ across identical builds", k)
		}
		n := overlay.NodeID(i % 128)
		ha, _ := a.NextHop(n, k)
		hb, _ := b.NextHop(n, k)
		if ha != hb {
			t.Fatalf("key %q at %v: next hops differ across identical builds", k, n)
		}
		if h2, _ := a.NextHop(n, k); h2 != ha {
			t.Fatalf("key %q at %v: NextHop not deterministic", k, n)
		}
	}
}

func TestNeighborsExcludeSelfAndAreSorted(t *testing.T) {
	tb := Build(64)
	for i := 0; i < 64; i++ {
		n := overlay.NodeID(i)
		nbrs := tb.Neighbors(n)
		if len(nbrs) == 0 {
			t.Fatalf("%v has no neighbors", n)
		}
		for j, m := range nbrs {
			if m == n {
				t.Fatalf("%v lists itself as neighbor", n)
			}
			if j > 0 && nbrs[j-1] >= m {
				t.Fatalf("neighbors of %v not sorted: %v", n, nbrs)
			}
		}
	}
}

func TestNeighborCountIsLogarithmic(t *testing.T) {
	tb := Build(1024)
	cap := DefaultBucketSize*int(math.Log2(1024)) + 4*DefaultBucketSize
	for i := 0; i < 1024; i += 37 {
		nbrs := tb.Neighbors(overlay.NodeID(i))
		if len(nbrs) > cap {
			t.Fatalf("node %d has %d neighbors, way above K·log n", i, len(nbrs))
		}
	}
}

func TestNextHopIsANeighbor(t *testing.T) {
	tb := Build(128)
	for i := 0; i < 60; i++ {
		k := overlay.Key(fmt.Sprintf("nbr-%d", i))
		n := overlay.NodeID(i)
		next, ok := tb.NextHop(n, k)
		if !ok {
			t.Fatalf("no hop from %v", n)
		}
		if next == n {
			continue // authority
		}
		if !contains(tb.Neighbors(n), next) {
			t.Fatalf("NextHop(%v) = %v is not a neighbor", n, next)
		}
	}
}

func TestJoinMaintainsInvariants(t *testing.T) {
	tb := Build(8)
	for i := 0; i < 40; i++ {
		id := tb.Join()
		if !tb.Alive(id) {
			t.Fatalf("joined node %v not alive", id)
		}
		if err := tb.CheckInvariants(); err != nil {
			t.Fatalf("after join %d: %v", i, err)
		}
	}
	if tb.Size() != 48 {
		t.Fatalf("Size = %d, want 48", tb.Size())
	}
}

func TestLeaveMaintainsInvariants(t *testing.T) {
	tb := Build(64)
	r := sim.NewRand(33)
	for i := 0; i < 40; i++ {
		alive := tb.AliveNodes()
		victim := alive[r.Pick(len(alive))]
		pos := tb.ID(victim)
		heir := tb.Leave(victim)
		if tb.Alive(victim) {
			t.Fatalf("left node %v still alive", victim)
		}
		if !tb.Alive(heir) {
			t.Fatalf("heir %v not alive", heir)
		}
		for _, m := range tb.AliveNodes() {
			if m != heir && tb.ID(m)^pos < tb.ID(heir)^pos {
				t.Fatalf("heir %v is not XOR-closest to departed position", heir)
			}
		}
		if err := tb.CheckInvariants(); err != nil {
			t.Fatalf("after leave %d: %v", i, err)
		}
	}
	if tb.Size() != 24 {
		t.Fatalf("Size = %d, want 24", tb.Size())
	}
}

func TestLeaveDeadNodePanics(t *testing.T) {
	tb := Build(4)
	tb.Leave(2)
	defer func() {
		if recover() == nil {
			t.Error("Leave of dead node did not panic")
		}
	}()
	tb.Leave(2)
}

func TestLeaveLastNodePanics(t *testing.T) {
	tb := Build(2)
	tb.Leave(0)
	defer func() {
		if recover() == nil {
			t.Error("Leave of last node did not panic")
		}
	}()
	tb.Leave(1)
}

func TestChurnRoutingStillWorks(t *testing.T) {
	tb := Build(128)
	r := sim.NewRand(78)
	for round := 0; round < 20; round++ {
		if r.Bernoulli(0.5) {
			tb.Join()
		} else {
			alive := tb.AliveNodes()
			tb.Leave(alive[r.Pick(len(alive))])
		}
		alive := tb.AliveNodes()
		for i := 0; i < 10; i++ {
			k := overlay.Key(fmt.Sprintf("churn-%d-%d", round, i))
			start := alive[r.Pick(len(alive))]
			path := overlay.PathTo(tb, start, k, 4*idBits)
			if path[len(path)-1] != tb.Owner(k) {
				t.Fatalf("round %d: route to %q failed", round, k)
			}
		}
	}
}

// TestSmallBucketsStillConverge: convergence needs only K ≥ 1 (every
// non-empty range stays represented), at the cost of longer paths.
func TestSmallBucketsStillConverge(t *testing.T) {
	tb := BuildK(256, 1)
	for i := 0; i < 100; i++ {
		k := overlay.Key(fmt.Sprintf("k1-%d", i))
		path := overlay.PathTo(tb, overlay.NodeID(i%256), k, 4*idBits)
		if path[len(path)-1] != tb.Owner(k) {
			t.Fatalf("K=1 route to %q failed", k)
		}
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: routing from any start node for any key terminates at Owner(k)
// within 4·64 hops.
func TestPropertyRouting(t *testing.T) {
	tb := Build(257)
	f := func(start uint16, key string) bool {
		n := overlay.NodeID(int(start) % 257)
		k := overlay.Key(key)
		path := overlay.PathTo(tb, n, k, 4*idBits)
		return path[len(path)-1] == tb.Owner(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRoute1024(b *testing.B) {
	tb := Build(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := overlay.Key(fmt.Sprintf("bench-%d", i%512))
		overlay.PathTo(tb, overlay.NodeID(i%1024), k, 4*idBits)
	}
}

func BenchmarkBuild1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Build(1024)
	}
}
