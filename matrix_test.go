// Scenario/transport parity matrix: every registered scenario must run
// — or fail fast with a descriptive error, never silently no-op — on
// every overlay kind under all three transports (discrete-event
// simulator, goroutine network, TCP network). The matrix is the
// contract the transports owe each other: one scenario registry, one
// fault surface, three interchangeable substrates.
package cup_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cup"
	"cup/internal/live"
	"cup/internal/overlay"
)

// membershipFault mirrors the internal marker interface so the test can
// predict, from the public scenario registry alone, which cells must be
// rejected at construction.
type membershipFault interface {
	RequiresMembership() bool
}

// needsMembership reports whether the scenario carries a fault script
// that splits and merges overlay regions at runtime (§2.9 churn).
func needsMembership(sc cup.Scenario) bool {
	for _, f := range sc.Faults {
		if mf, ok := f.(membershipFault); ok && mf.RequiresMembership() {
			return true
		}
	}
	return false
}

// matrixTransports is every substrate a scenario must replay on.
var matrixTransports = []cup.Transport{cup.Simulated, cup.Live, cup.LiveTCP}

// TestScenarioTransportParityMatrix drives the full registry through
// the matrix. Cells pairing a membership-churn scenario with a static
// overlay must fail at New with a descriptive error — the
// no-silent-no-op contract; every other cell must complete its run and
// report query work. Short mode trims the overlay axis (one dynamic,
// one static kind) but never the scenario or transport axes: transport
// parity is what the matrix exists to protect.
func TestScenarioTransportParityMatrix(t *testing.T) {
	kinds := overlay.Kinds()
	if testing.Short() {
		kinds = []string{"can", "chord"}
	}
	for _, name := range cup.ScenarioNames() {
		name := name
		for _, kind := range kinds {
			kind := kind
			for _, tr := range matrixTransports {
				tr := tr
				t.Run(fmt.Sprintf("%s/%s/%s", name, kind, tr), func(t *testing.T) {
					t.Parallel()
					sc, err := cup.BuildScenario(name)
					if err != nil {
						t.Fatalf("BuildScenario(%q): %v", name, err)
					}
					wantReject := needsMembership(sc) && !cup.ChurnCapable(kind)
					d, err := cup.New(
						cup.WithTransport(tr),
						cup.WithOverlay(kind),
						cup.WithNodes(16),
						cup.WithKeys(2),
						cup.WithSeed(11),
						cup.WithScenario(sc),
						cup.WithQueryRate(5),
						// The fault scripts' default timelines start 50 s
						// into the window; 120 s covers their first events
						// (join + leave for churn) in every cell.
						cup.WithQueryWindow(0, 120*time.Second),
						cup.WithHopDelay(200*time.Microsecond),
						cup.WithTimeScale(300),
					)
					if wantReject {
						if err == nil {
							d.Close()
							t.Fatalf("New accepted membership churn on static overlay %q; the fault would silently no-op", kind)
						}
						if !strings.Contains(err.Error(), "static") {
							t.Fatalf("rejection error %q does not explain the static-overlay conflict", err)
						}
						return
					}
					if err != nil {
						t.Fatalf("New: %v", err)
					}
					defer d.Close()
					ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
					defer cancel()
					res, err := d.Run(ctx)
					if err != nil {
						t.Fatalf("Run: %v", err)
					}
					// The simulator reports the paper's per-query taxonomy;
					// the live transports fold message counts into the hop
					// fields. Either way, a scenario that ran must have
					// produced query work.
					if tr == cup.Simulated {
						if res.Counters.Queries == 0 {
							t.Fatal("simulated run reported zero queries")
						}
					} else if res.Counters.QueryHops == 0 {
						t.Fatal("live run reported zero query messages")
					}
				})
			}
		}
	}
}

// TestLiveChurnScenarioChangesMembershipCounters is the tentpole
// acceptance check at the façade level: the registered churn scenario
// on a live deployment must actually join and retire peers — visible
// as membership events on the bus — not just replay traffic around an
// inert fault script.
func TestLiveChurnScenarioChangesMembershipCounters(t *testing.T) {
	sc, err := cup.BuildScenario("churn")
	if err != nil {
		t.Fatal(err)
	}
	var joins, leaves atomic.Uint64
	d, err := cup.New(
		cup.WithLive(),
		cup.WithOverlay("can"),
		cup.WithNodes(12),
		cup.WithSeed(5),
		cup.WithScenario(sc),
		cup.WithQueryRate(2),
		// NodeChurn's default timeline runs join/leave/join at t=50 s,
		// 110 s, 170 s; the window must reach past them.
		cup.WithQueryWindow(0, 180*time.Second),
		cup.WithHopDelay(200*time.Microsecond),
		cup.WithTimeScale(300),
		cup.WithObserver(cup.ObserverFunc(func(e cup.Event) {
			switch e.Kind {
			case cup.EvNodeJoined:
				joins.Add(1)
			case cup.EvNodeLeft:
				leaves.Add(1)
			}
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	if _, err := d.Run(ctx); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if joins.Load() == 0 || leaves.Load() == 0 {
		t.Fatalf("churn scenario produced joins=%d leaves=%d; membership faults must move real peers", joins.Load(), leaves.Load())
	}
}

// TestLiveChurnTrialsConcurrent races three concurrent live trial
// networks each running the churn scenario — the -race target for the
// join/leave choreography under a parallel sweep.
func TestLiveChurnTrialsConcurrent(t *testing.T) {
	sc, err := cup.BuildScenario("churn")
	if err != nil {
		t.Fatal(err)
	}
	d, err := cup.New(
		cup.WithLive(),
		cup.WithOverlay("kademlia"),
		cup.WithNodes(10),
		cup.WithSeed(3),
		cup.WithScenario(sc),
		cup.WithQueryRate(2),
		cup.WithQueryWindow(0, 180*time.Second),
		cup.WithHopDelay(200*time.Microsecond),
		cup.WithTimeScale(300),
		cup.WithTrials(3),
		cup.WithParallelism(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	res, err := d.Run(ctx)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Counters.QueryHops == 0 {
		t.Fatal("merged trial counters report zero query messages")
	}
}

// TestTCPTrialSweepReleasesPortBudget runs a multi-trial sweep on the
// TCP transport and checks the process-wide listener budget returns to
// its baseline: every per-trial network must release exactly what it
// acquired.
func TestTCPTrialSweepReleasesPortBudget(t *testing.T) {
	before := live.PortsInUse()
	d, err := cup.New(
		cup.WithTCP(),
		cup.WithOverlay("can"),
		cup.WithNodes(8),
		cup.WithSeed(9),
		cup.WithScenario(cup.Scenario{Traffic: cup.PoissonTraffic(0)}),
		cup.WithQueryRate(30),
		cup.WithQueryWindow(0, 10*time.Second),
		cup.WithTimeScale(50),
		cup.WithTrials(4),
		cup.WithParallelism(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	res, err := d.Run(ctx)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Counters.QueryHops == 0 {
		t.Fatal("TCP sweep reported zero query messages")
	}
	if got := live.PortsInUse(); got != before {
		t.Fatalf("PortsInUse = %d after the sweep, want baseline %d (trial networks leaked listeners)", got, before)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if got := live.PortsInUse(); got != before {
		t.Fatalf("PortsInUse = %d after Close, want baseline %d", got, before)
	}
}

// TestTCPTrialBootFailureReleasesPortBudget exhausts the listener
// budget so a mid-sweep trial cannot boot, and checks the failure is
// descriptive and leak-free: acquire and release stay balanced on the
// error path, and the budget gauge returns to its pre-sweep level.
func TestTCPTrialBootFailureReleasesPortBudget(t *testing.T) {
	before := live.PortsInUse()
	// Leave room for one 16-peer network but not two, so a parallel
	// sweep boots its first trial and fails a later one mid-sweep.
	hold := live.DefaultPortBudget - before - 24
	if hold <= 0 {
		t.Skipf("budget already too busy to stage exhaustion: %d in use", before)
	}
	if err := live.AcquireListeners(hold); err != nil {
		t.Fatal(err)
	}
	defer live.ReleaseListeners(hold)

	d, err := cup.New(
		cup.WithTCP(),
		cup.WithOverlay("can"),
		cup.WithNodes(16),
		cup.WithSeed(9),
		cup.WithScenario(cup.Scenario{Traffic: cup.PoissonTraffic(0)}),
		cup.WithQueryRate(20),
		cup.WithQueryWindow(0, 10*time.Second),
		cup.WithTimeScale(50),
		cup.WithTrials(4),
		cup.WithParallelism(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	if _, err := d.Run(ctx); err == nil {
		t.Fatal("Run succeeded with the port budget exhausted; a trial booted listeners it could not have")
	} else if !strings.Contains(err.Error(), "port budget") {
		t.Fatalf("Run error %q does not name the exhausted port budget", err)
	}
	if got := live.PortsInUse(); got != before+hold {
		t.Fatalf("PortsInUse = %d after the failed sweep, want %d (error path leaked or double-released listeners)", got, before+hold)
	}
}

// TestServingDrainsInFlightGET is the graceful-shutdown regression: a
// GET already inside the CUP query path when Deployment.Close begins
// must complete through the drain window instead of being severed.
func TestServingDrainsInFlightGET(t *testing.T) {
	d, err := cup.New(
		cup.WithLive(),
		cup.WithNodes(16),
		// A generous hop delay keeps the GET's overlay query in flight
		// long enough for Close to start mid-request.
		cup.WithHopDelay(150*time.Millisecond),
		cup.WithSeed(7),
		cup.WithServing("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			_ = d.Close()
		}
	}()
	ctx := context.Background()
	if err := d.Publish(ctx, "drain-key", 0, "198.51.100.77", time.Hour); err != nil {
		t.Fatal(err)
	}
	base := "http://" + d.ServingAddrs()[0]

	type getResult struct {
		status int
		body   string
		err    error
	}
	got := make(chan getResult, 1)
	go func() {
		resp, err := http.Get(base + "/v1/key/drain-key")
		if err != nil {
			got <- getResult{err: err}
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		got <- getResult{status: resp.StatusCode, body: string(raw)}
	}()

	// Let the GET reach the query path (each hop sleeps 150 ms, so it
	// is still in flight), then close the deployment underneath it.
	time.Sleep(100 * time.Millisecond)
	closed = true
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight GET severed by shutdown: %v", r.err)
	}
	if r.status != http.StatusOK || !strings.Contains(r.body, "198.51.100.77") {
		t.Fatalf("in-flight GET = %d %q, want 200 with the published address", r.status, r.body)
	}
}
